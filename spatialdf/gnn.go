package spatialdf

import (
	"repro/internal/gnn"
)

// GraphEdge is one directed, weighted edge of a GNN input graph.
type GraphEdge struct {
	U, V int
	W    float64
}

// GNNGraph is the input graph of a sort-pooling GNN.
type GNNGraph struct {
	Nodes int
	Edges []GraphEdge
}

// GNN is a sort-pooling graph neural network (Zhang et al., AAAI'18; the
// paper's motivating application for spatial sorting): Layers rounds of
// degree-normalized mean aggregation with ReLU — each channel one spatial
// SpMV — followed by a SortPooling layer that orders nodes by their last
// feature channel with the energy-optimal 2-D mergesort and keeps the TopK
// highest-scoring nodes.
type GNN struct {
	Layers int
	TopK   int
}

// Forward runs the network over the node features (channel-major:
// features[c][v]) and returns the pooled TopK x channels block, the
// selected node ids (highest score first), and the Spatial Computer Model
// cost of the whole pass.
func (g GNN) Forward(graph GNNGraph, features [][]float64, opts ...Option) (pooled [][]float64, picked []int, met Metrics, err error) {
	ig := gnn.Graph{Nodes: graph.Nodes, Edges: make([]gnn.Edge, len(graph.Edges))}
	for i, e := range graph.Edges {
		ig.Edges[i] = gnn.Edge{U: e.U, V: e.V, W: e.W}
	}
	defer captureMemLimit(&err)
	m := buildConfig(opts).newMachine()
	m.Phase("gnn")
	pooled, picked, err = gnn.Model{Layers: g.Layers, TopK: g.TopK}.Forward(m, ig, gnn.Features(features))
	if err != nil {
		return nil, nil, Metrics{}, err
	}
	return pooled, picked, fromMachine(m), nil
}
