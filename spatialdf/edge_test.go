package spatialdf

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/machine"
)

// Single-element inputs are the smallest grid the model admits; every
// operation must handle them without special-casing by the caller.
func TestSingleElementOps(t *testing.T) {
	if out, _ := Scan([]float64{5}); len(out) != 1 || out[0] != 5 {
		t.Errorf("Scan([5]) = %v", out)
	}
	if out, _ := Sort([]float64{5}); len(out) != 1 || out[0] != 5 {
		t.Errorf("Sort([5]) = %v", out)
	}
	if got, _ := Reduce([]float64{5}); got != 5 {
		t.Errorf("Reduce([5]) = %v", got)
	}
	if v, _, err := Select([]float64{5}, 1); err != nil || v != 5 {
		t.Errorf("Select([5], 1) = %v, %v", v, err)
	}
	if v, _, err := Median([]float64{5}); err != nil || v != 5 {
		t.Errorf("Median([5]) = %v, %v", v, err)
	}
	if out, _, err := SegmentedScan([]float64{5}, []bool{true}); err != nil || len(out) != 1 || out[0] != 5 {
		t.Errorf("SegmentedScan([5]) = %v, %v", out, err)
	}
	if out, _, err := Permute([]float64{5}, []int{0}); err != nil || len(out) != 1 || out[0] != 5 {
		t.Errorf("Permute([5]) = %v, %v", out, err)
	}
}

// Lengths straddling the internal power-of-four padding boundaries (16 and
// 64) must give the same results as any other length.
func TestPaddingBoundaryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{15, 16, 17, 63, 64, 65} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		gotSorted, _ := Sort(vals)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if gotSorted[i] != want[i] {
				t.Fatalf("n=%d: sorted[%d] = %v, want %v", n, i, gotSorted[i], want[i])
			}
		}
		gotScan, _ := Scan(vals)
		acc := 0.0
		for i := range vals {
			acc += vals[i]
			if d := gotScan[i] - acc; d > 1e-9 || d < -1e-9 {
				t.Fatalf("n=%d: prefix[%d] = %v, want %v", n, i, gotScan[i], acc)
			}
		}
	}
}

// Padding an input up to the next power of four must not change the
// PeakMemory class: the padded run uses the same O(1) per-PE registers.
func TestPaddingKeepsPeakMemoryClass(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	peak := func(n int) int {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		_, m := Sort(vals)
		return m.PeakMemory
	}
	exact, padded := peak(64), peak(65) // 65 pads to 256
	if padded > 2*exact {
		t.Errorf("padding blew up PeakMemory: n=64 peak %d, n=65 peak %d", exact, padded)
	}
	_, sExact := Scan(make([]float64, 16))
	_, sPadded := Scan(make([]float64, 17)) // pads to 64
	if sPadded.PeakMemory > 2*sExact.PeakMemory {
		t.Errorf("scan padding blew up PeakMemory: %d -> %d", sExact.PeakMemory, sPadded.PeakMemory)
	}
}

// All-equal keys stress the merge and partition paths (every comparison
// ties).
func TestSortAllEqualKeys(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 3.25
	}
	got, _ := Sort(vals)
	for i, v := range got {
		if v != 3.25 {
			t.Fatalf("sorted[%d] = %v", i, v)
		}
	}
	if v, _, err := Select(vals, 50); err != nil || v != 3.25 {
		t.Errorf("Select over equal keys = %v, %v", v, err)
	}
}

// Length-1 segments (consecutive heads) and one whole-array segment are the
// boundary shapes of the segmented scan; an implicit head at element 0 is
// part of the contract.
func TestSegmentedScanBoundarySegments(t *testing.T) {
	vals := []float64{1, 2, 3, 4}

	allHeads := []bool{true, true, true, true}
	got, _, err := SegmentedScan(vals, allHeads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("all-heads[%d] = %v, want %v", i, got[i], vals[i])
		}
	}

	oneSegment := []bool{true, false, false, false}
	got, _, err = SegmentedScan(vals, oneSegment)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 3, 6, 10} {
		if got[i] != want {
			t.Fatalf("one-segment[%d] = %v, want %v", i, got[i], want)
		}
	}

	// Element 0 starts a segment even when its head flag is false.
	noFirstHead := []bool{false, false, true, false}
	got, _, err = SegmentedScan(vals, noFirstHead)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 3, 3, 7} {
		if got[i] != want {
			t.Fatalf("implicit-head[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestSegmentedScanLengthMismatch(t *testing.T) {
	if _, _, err := SegmentedScan([]float64{1, 2}, []bool{true}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPermuteRejectsBadPermutations(t *testing.T) {
	cases := []struct {
		name string
		perm []int
	}{
		{"length mismatch", []int{0}},
		{"out of range", []int{0, 2}},
		{"negative", []int{-1, 0}},
		{"duplicate", []int{1, 1}},
	}
	for _, c := range cases {
		if _, _, err := Permute([]float64{1, 2}, c.perm); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestWithCongestionReportsMaxLinkLoad(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i)
	}
	_, plain := Scan(vals)
	if plain.MaxLinkLoad != 0 {
		t.Errorf("MaxLinkLoad without WithCongestion = %d, want 0", plain.MaxLinkLoad)
	}
	_, tracked := Scan(vals, WithCongestion())
	if tracked.MaxLinkLoad <= 0 {
		t.Errorf("MaxLinkLoad with WithCongestion = %d, want > 0", tracked.MaxLinkLoad)
	}
	if tracked.MaxLinkLoad > tracked.Energy {
		t.Errorf("MaxLinkLoad %d exceeds total energy %d", tracked.MaxLinkLoad, tracked.Energy)
	}
	// Tracking is observational: all cost metrics stay byte-identical.
	tracked.MaxLinkLoad = 0
	if !tracked.Equal(plain) {
		t.Errorf("congestion tracking changed costs: %v vs %v", tracked, plain)
	}
}

func TestWithTracerSeesEveryMessage(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var count int64
	//lint:ignore SA1019 the deprecated adapter must keep working until removed
	_, m := Sort(vals, WithTracer(func(from, to Coord, v any) { count++ }))
	if count != m.Messages {
		t.Errorf("tracer saw %d messages, metrics report %d", count, m.Messages)
	}
	if count == 0 {
		t.Error("tracer saw no messages")
	}
}

func TestWithMemoryLimitViolationIsError(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	heads := []bool{true, false, true, false}
	_, _, err := SegmentedScan(vals, heads, WithMemoryLimit(1))
	if err == nil {
		t.Fatal("memory limit 1 not reported")
	}
	var mle machine.MemoryLimitError
	if !errors.As(err, &mle) {
		t.Fatalf("error %v (%T) is not a machine.MemoryLimitError", err, err)
	}
	if mle.Limit != 1 || mle.Registers <= mle.Limit {
		t.Errorf("MemoryLimitError = %+v", mle)
	}
	// A generous limit passes and still certifies O(1) memory.
	out, m, err := SegmentedScan(vals, heads, WithMemoryLimit(64))
	if err != nil {
		t.Fatalf("generous limit failed: %v", err)
	}
	if len(out) != 4 || m.PeakMemory > 64 {
		t.Errorf("out=%v peak=%d", out, m.PeakMemory)
	}
}

func TestWithSeedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	v1, m1, err1 := Select(vals, 77, WithSeed(5))
	v2, m2, err2 := Select(vals, 77, WithSeed(5))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v1 != v2 || !m1.Equal(m2) {
		t.Errorf("same seed, different runs: (%v, %v) vs (%v, %v)", v1, m1, v2, m2)
	}
	// A different seed changes the random pivots (so usually the costs) but
	// never the answer.
	v3, _, err3 := Select(vals, 77, WithSeed(6))
	if err3 != nil {
		t.Fatal(err3)
	}
	if v3 != v1 {
		t.Errorf("seed changed the selected value: %v vs %v", v3, v1)
	}
}

func TestOptionsOnAggregateOps(t *testing.T) {
	// Options thread through the composite facades (GNN, Tree) too.
	tr := Tree{Parent: []int{0, 0, 1}}
	var count int64
	//lint:ignore SA1019 the deprecated adapter must keep working until removed
	out, _, err := tr.RootfixSum([]float64{1, 1, 1}, WithTracer(func(from, to Coord, v any) { count++ }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || count == 0 {
		t.Errorf("out=%v traced=%d", out, count)
	}

	g := GNNGraph{Nodes: 4, Edges: []GraphEdge{{0, 1, 1}, {2, 3, 1}}}
	feats := [][]float64{{1, 2, 3, 4}}
	_, _, m, err := GNN{Layers: 1, TopK: 2}.Forward(g, feats, WithCongestion())
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxLinkLoad <= 0 {
		t.Errorf("GNN MaxLinkLoad = %d, want > 0", m.MaxLinkLoad)
	}
}
