package spatialdf_test

import (
	"fmt"

	"repro/spatialdf"
)

// The basic primitives operate on plain slices and report the Spatial
// Computer Model costs of each call.
func ExampleScan() {
	prefix, cost := spatialdf.Scan([]float64{1, 2, 3, 4})
	fmt.Println(prefix, cost.Depth > 0)
	// Output: [1 3 6 10] true
}

func ExampleSort() {
	sorted, _ := spatialdf.Sort([]float64{3, 1, 2})
	fmt.Println(sorted)
	// Output: [1 2 3]
}

func ExampleSelect() {
	v, _, err := spatialdf.Select([]float64{9, 4, 7, 1, 8}, 2)
	fmt.Println(v, err)
	// Output: 4 <nil>
}

func ExampleSegmentedScan() {
	out, _, err := spatialdf.SegmentedScan(
		[]float64{1, 2, 3, 4},
		[]bool{true, false, true, false},
	)
	fmt.Println(out, err)
	// Output: [1 3 3 7] <nil>
}

func ExampleSpMV() {
	a := spatialdf.Matrix{N: 2, Entries: []spatialdf.MatrixEntry{
		{Row: 0, Col: 0, Val: 2},
		{Row: 1, Col: 0, Val: 1},
		{Row: 1, Col: 1, Val: 3},
	}}
	y, _, err := spatialdf.SpMV(a, []float64{10, 1})
	fmt.Println(y, err)
	// Output: [20 13] <nil>
}

func ExampleTree_RootfixSum() {
	// A path 0 -> 1 -> 2 with unit values: each node's rootfix is its
	// depth + 1.
	t := spatialdf.Tree{Parent: []int{0, 0, 1}}
	sums, _, err := t.RootfixSum([]float64{1, 1, 1})
	fmt.Println(sums, err)
	// Output: [1 2 3] <nil>
}
