// Package spatialdf is the public API of the spatial-dataflow algorithms
// library: energy-optimal, low-depth primitives for the Spatial Computer
// Model — parallel scans, sorting, rank selection and sparse matrix-vector
// multiplication — as described in "Energy-Optimal and Low-Depth
// Algorithmic Primitives for Spatial Dataflow Architectures" (IPDPS 2025).
//
// Every operation lays a plain Go slice out on a simulated processor grid,
// runs the spatial algorithm, and returns the result together with the
// model-cost Metrics (energy, depth, distance — the quantities the paper's
// Table I bounds). Baseline variants (bitonic network sort, binary-tree
// scan, mesh shearsort, PRAM-simulated SpMV) are included so the paper's
// comparisons can be reproduced through the same interface.
//
// Every operation accepts functional options configuring the simulated
// machine: WithMemoryLimit (certify the O(1)-memory contract),
// WithCongestion (per-link load tracking, reported as Metrics.MaxLinkLoad),
// WithTraceSink (structured per-message events for the sinks in the trace
// package — heatmaps, phase counters, Chrome trace_event export),
// WithTracer (the legacy endpoint/payload callback) and WithSeed
// (randomized operations). Operations validate their inputs and return
// errors — they do not panic on user data.
//
// Every operation also records its own event stream, so the returned
// Metrics can reconstruct the chain of messages that realized the Depth
// and Distance costs: see Metrics.CriticalPath.
//
// Inputs of arbitrary length are padded internally to the power-of-four
// sizes the model assumes; padding never changes results.
package spatialdf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/sortnet"
	"repro/internal/spmv"
	"repro/internal/trace"
	"repro/internal/zorder"
)

// Metrics are the Spatial Computer Model costs of one operation.
type Metrics struct {
	// Energy is the total Manhattan distance travelled by all messages —
	// the load on the on-chip network.
	Energy int64
	// Depth is the longest chain of dependent messages — the inverse of
	// available parallelism.
	Depth int64
	// Distance is the largest summed distance along any dependent chain —
	// the wire latency.
	Distance int64
	// Messages counts all messages sent.
	Messages int64
	// PeakMemory is the largest number of words held by any single
	// processing element (the model requires O(1)).
	PeakMemory int
	// MaxLinkLoad is the highest traversal count over any single directed
	// mesh link under dimension-ordered routing — the congestion
	// complement of Energy (the total load). Populated only when the
	// operation ran WithCongestion; zero otherwise.
	MaxLinkLoad int64

	// critical is the recorder that observed the operation's event stream;
	// CriticalPath and DistanceCriticalPath reconstruct chains from it on
	// demand. Nil for zero-valued or Sequential-composed Metrics.
	critical *trace.CriticalPath
}

func fromMachine(m *machine.Machine) Metrics {
	mm := m.Metrics()
	met := Metrics{
		Energy:      mm.Energy,
		Depth:       mm.Depth,
		Distance:    mm.Distance,
		Messages:    mm.Messages,
		PeakMemory:  mm.PeakMemory,
		MaxLinkLoad: m.MaxCongestion(),
	}
	trace.Walk(m.Sink(), func(s trace.Sink) {
		if cp, ok := s.(*trace.CriticalPath); ok && met.critical == nil {
			met.critical = cp
		}
	})
	return met
}

// CriticalPath returns the chain of dependent messages that realizes the
// Depth metric: len(CriticalPath()) == Depth, every event departs from the
// PE the previous one reached, and the chain-depth annotations run 1..Depth.
// The chain is reconstructed on demand from the operation's recorded event
// stream. It is nil for zero-valued Metrics and for Metrics composed with
// Sequential (the composition is hypothetical — no single run realized it).
func (m Metrics) CriticalPath() []Event {
	if m.critical == nil {
		return nil
	}
	return m.critical.DepthPath()
}

// DistanceCriticalPath returns the chain of dependent messages that
// realizes the Distance metric: the events' Dist fields sum to Distance.
// Nil under the same conditions as CriticalPath.
func (m Metrics) DistanceCriticalPath() []Event {
	if m.critical == nil {
		return nil
	}
	return m.critical.DistancePath()
}

// Equal reports whether two Metrics carry the same costs. Use it instead
// of ==: Metrics values also hold an internal reference to the run's trace
// recorder, which differs between runs even when every cost agrees.
func (m Metrics) Equal(o Metrics) bool {
	return m.Energy == o.Energy && m.Depth == o.Depth &&
		m.Distance == o.Distance && m.Messages == o.Messages &&
		m.PeakMemory == o.PeakMemory && m.MaxLinkLoad == o.MaxLinkLoad
}

func (m Metrics) String() string {
	s := fmt.Sprintf("energy=%d depth=%d distance=%d messages=%d peakMem=%d",
		m.Energy, m.Depth, m.Distance, m.Messages, m.PeakMemory)
	if m.MaxLinkLoad > 0 {
		s += fmt.Sprintf(" maxLink=%d", m.MaxLinkLoad)
	}
	return s
}

// Sequential returns the cost of running this operation followed by
// another: energies and message counts add, chains concatenate (depth and
// distance add), memory peaks take the maximum. Iterative applications —
// e.g. the SpMV inside a conjugate-gradient loop — compose with it.
// MaxLinkLoad also takes the maximum: the phases may peak on different
// links, so the sum would overstate the congestion of the composition.
func (m Metrics) Sequential(next Metrics) Metrics {
	peak := m.PeakMemory
	if next.PeakMemory > peak {
		peak = next.PeakMemory
	}
	link := m.MaxLinkLoad
	if next.MaxLinkLoad > link {
		link = next.MaxLinkLoad
	}
	return Metrics{
		Energy:      m.Energy + next.Energy,
		Depth:       m.Depth + next.Depth,
		Distance:    m.Distance + next.Distance,
		Messages:    m.Messages + next.Messages,
		PeakMemory:  peak,
		MaxLinkLoad: link,
	}
}

// gridFor returns a machine (configured by cfg, with its trace phase set to
// the operation name) and a square power-of-two region large enough for n
// elements.
func gridFor(n int, cfg config, phase string) (*machine.Machine, grid.Rect) {
	side := zorder.NextPow2(int(math.Ceil(math.Sqrt(float64(max(n, 1))))))
	m := cfg.newMachine()
	m.Phase(phase)
	return m, grid.Square(machine.Coord{}, side)
}

// Scan returns the inclusive prefix sums of vals using the energy-optimal
// Z-order scan (Lemma IV.3: Theta(n) energy, O(log n) depth, Theta(sqrt n)
// distance).
func Scan(vals []float64, opts ...Option) ([]float64, Metrics) {
	return ScanWith(func(a, b float64) float64 { return a + b }, 0, vals, opts...)
}

// ScanWith is Scan for an arbitrary associative operator with the given
// identity element.
func ScanWith(op func(a, b float64) float64, identity float64, vals []float64, opts ...Option) ([]float64, Metrics) {
	if len(vals) == 0 {
		return nil, Metrics{}
	}
	cfg := buildConfig(opts)
	if cfg.mapped {
		return scanMapped(op, identity, vals, cfg)
	}
	m, r := gridFor(len(vals), cfg, "scan")
	t := grid.ZOrder(r)
	for i := 0; i < r.Size(); i++ {
		if i < len(vals) {
			m.Set(t.At(i), "v", vals[i])
		} else {
			m.Set(t.At(i), "v", identity)
		}
	}
	collectives.Scan(m, r, "v", func(a, b machine.Value) machine.Value {
		return op(a.(float64), b.(float64))
	}, identity)
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(float64)
	}
	return out, fromMachine(m)
}

// SegmentedScan computes inclusive per-segment prefix sums, where heads[i]
// marks the first element of each segment (element 0 always starts one).
// It returns an error if vals and heads differ in length.
func SegmentedScan(vals []float64, heads []bool, opts ...Option) (out []float64, met Metrics, err error) {
	if len(vals) != len(heads) {
		return nil, Metrics{}, fmt.Errorf("spatialdf: SegmentedScan length mismatch: %d values, %d heads", len(vals), len(heads))
	}
	if len(vals) == 0 {
		return nil, Metrics{}, nil
	}
	defer captureMemLimit(&err)
	m, r := gridFor(len(vals), buildConfig(opts), "segmented-scan")
	t := grid.ZOrder(r)
	for i := 0; i < r.Size(); i++ {
		if i < len(vals) {
			m.Set(t.At(i), "v", vals[i])
			m.Set(t.At(i), "h", heads[i])
		} else {
			m.Set(t.At(i), "v", 0.0)
			m.Set(t.At(i), "h", true)
		}
	}
	collectives.SegmentedScan(m, r, "v", "h", collectives.Add, 0.0)
	out = make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(float64)
	}
	return out, fromMachine(m), nil
}

// ScanTree computes the same prefix sums with the binary-tree scan over a
// row-major layout — the Theta(n log n)-energy baseline of Section IV-C.
func ScanTree(vals []float64, opts ...Option) ([]float64, Metrics) {
	if len(vals) == 0 {
		return nil, Metrics{}
	}
	m, r := gridFor(len(vals), buildConfig(opts), "scan-tree")
	t := grid.RowMajor(r)
	for i := 0; i < r.Size(); i++ {
		v := 0.0
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
	collectives.ScanTrack(m, t, "v", collectives.Add, 0.0)
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(float64)
	}
	return out, fromMachine(m)
}

// ScanSequential computes the prefix sums with a sequential relay chain in
// Z-order: Theta(n) energy but Theta(n) depth (no parallelism).
func ScanSequential(vals []float64, opts ...Option) ([]float64, Metrics) {
	if len(vals) == 0 {
		return nil, Metrics{}
	}
	m, r := gridFor(len(vals), buildConfig(opts), "scan-seq")
	t := grid.ZOrder(r)
	for i := 0; i < r.Size(); i++ {
		v := 0.0
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
	collectives.ScanSequential(m, t, "v", collectives.Add)
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(float64)
	}
	return out, fromMachine(m)
}

// Reduce returns the sum of vals with the multicast-free reduce of
// Corollary IV.2 (O(n) energy, O(log n) depth on a square subgrid).
func Reduce(vals []float64, opts ...Option) (float64, Metrics) {
	if len(vals) == 0 {
		return 0, Metrics{}
	}
	cfg := buildConfig(opts)
	if cfg.mapped {
		return reduceMapped(vals, cfg)
	}
	m, r := gridFor(len(vals), cfg, "reduce")
	t := grid.RowMajor(r)
	for i := 0; i < r.Size(); i++ {
		v := 0.0
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
	collectives.Reduce(m, r, "v", collectives.Add)
	return m.Get(r.Origin, "v").(float64), fromMachine(m)
}

// BroadcastCost reports the model cost of broadcasting one value to n
// processors without multicasting (Lemma IV.1).
func BroadcastCost(n int, opts ...Option) Metrics {
	m, r := gridFor(n, buildConfig(opts), "broadcast")
	m.Set(r.Origin, "v", 1.0)
	collectives.Broadcast(m, r, "v")
	return fromMachine(m)
}

// Sort returns vals in ascending order using the energy-optimal 2-D
// mergesort (Theorem V.8: Theta(n^{3/2}) energy — matching the permutation
// lower bound — O(log^3 n) depth, Theta(sqrt n) distance).
func Sort(vals []float64, opts ...Option) ([]float64, Metrics) {
	if cfg := buildConfig(opts); cfg.mapped {
		if len(vals) == 0 {
			return nil, Metrics{}
		}
		return sortMapped(vals, cfg)
	}
	return sortPadded(vals, opts, "sort/merge", func(m *machine.Machine, r grid.Rect) {
		core.MergeSort(m, r, "v", order.Float64)
	})
}

// SortBitonic sorts with the bitonic network on a row-major layout — the
// Theta(n^{3/2} log n)-energy baseline of Lemma V.4.
func SortBitonic(vals []float64, opts ...Option) ([]float64, Metrics) {
	return sortPadded(vals, opts, "sort/bitonic", func(m *machine.Machine, r grid.Rect) {
		sortnet.Sort(m, grid.RowMajor(r), "v", r.Size(), order.Float64)
	})
}

// SortMesh sorts with shearsort, a classic mesh-connected-computer
// algorithm with polynomial Theta(sqrt n log n) depth (Section II-B).
func SortMesh(vals []float64, opts ...Option) ([]float64, Metrics) {
	return sortPadded(vals, opts, "sort/shearsort", func(m *machine.Machine, r grid.Rect) {
		sortnet.Shearsort(m, r, "v", order.Float64)
	})
}

func sortPadded(vals []float64, opts []Option, phase string, run func(*machine.Machine, grid.Rect)) ([]float64, Metrics) {
	if len(vals) == 0 {
		return nil, Metrics{}
	}
	m, r := gridFor(len(vals), buildConfig(opts), phase)
	t := grid.RowMajor(r)
	for i := 0; i < r.Size(); i++ {
		v := math.Inf(1)
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
	run(m, r)
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(float64)
	}
	return out, fromMachine(m)
}

// SortIndices sorts (value, index) pairs with the 2-D mergesort and returns
// the permutation order such that vals[order[0]] <= vals[order[1]] <= ...
// (ties broken by original index, i.e. a stable argsort). Use it when the
// sort key travels with a payload — e.g. a GNN sort-pooling layer ordering
// node embeddings by a score channel.
func SortIndices(vals []float64, opts ...Option) ([]int, Metrics) {
	if len(vals) == 0 {
		return nil, Metrics{}
	}
	type kv struct {
		v float64
		i int
	}
	m, r := gridFor(len(vals), buildConfig(opts), "sort/indices")
	t := grid.RowMajor(r)
	for i := 0; i < r.Size(); i++ {
		e := kv{v: math.Inf(1), i: i}
		if i < len(vals) {
			e.v = vals[i]
		}
		m.Set(t.At(i), "v", e)
	}
	less := func(a, b machine.Value) bool {
		x, y := a.(kv), b.(kv)
		if x.v != y.v {
			return x.v < y.v
		}
		return x.i < y.i
	}
	core.MergeSort(m, r, "v", less)
	out := make([]int, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(kv).i
	}
	return out, fromMachine(m)
}

// Select returns the k-th smallest element of vals (k is 1-indexed) using
// the randomized linear-energy selection of Theorem VI.3. The pseudo-random
// choices are seeded by WithSeed (default 1) for reproducibility; the
// result is exact for any seed. It returns an error if k is out of range.
func Select(vals []float64, k int, opts ...Option) (got float64, met Metrics, err error) {
	if k < 1 || k > len(vals) {
		return 0, Metrics{}, fmt.Errorf("spatialdf: Select rank %d out of range [1,%d]", k, len(vals))
	}
	defer captureMemLimit(&err)
	cfg := buildConfig(opts)
	m, r := gridFor(len(vals), cfg, "select")
	t := grid.RowMajor(r)
	for i := 0; i < r.Size(); i++ {
		v := math.Inf(1)
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
	v := core.Select(m, r, "v", k, order.Float64, rand.New(rand.NewSource(cfg.seed)))
	return v.(float64), fromMachine(m), nil
}

// Median returns the lower median of vals (rank ceil(n/2)). It returns an
// error if vals is empty.
func Median(vals []float64, opts ...Option) (float64, Metrics, error) {
	return Select(vals, (len(vals)+1)/2, opts...)
}

// Permute routes vals[i] to position perm[i] on a square grid, each element
// travelling directly. With the reversal permutation this measures the
// Omega(n^{3/2}) lower bound of Lemma V.1 that makes the mergesort optimal.
// It returns an error if perm is not a permutation of the indices of vals.
func Permute(vals []float64, perm []int, opts ...Option) (out []float64, met Metrics, err error) {
	if len(vals) != len(perm) {
		return nil, Metrics{}, fmt.Errorf("spatialdf: Permute length mismatch: %d values, %d positions", len(vals), len(perm))
	}
	seen := make([]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) {
			return nil, Metrics{}, fmt.Errorf("spatialdf: Permute position perm[%d] = %d out of range [0,%d)", i, p, len(perm))
		}
		if seen[p] {
			return nil, Metrics{}, fmt.Errorf("spatialdf: Permute position %d targeted twice", p)
		}
		seen[p] = true
	}
	if len(vals) == 0 {
		return nil, Metrics{}, nil
	}
	defer captureMemLimit(&err)
	m, r := gridFor(len(vals), buildConfig(opts), "permute")
	t := grid.Slice(grid.RowMajor(r), 0, len(vals))
	for i, v := range vals {
		m.Set(t.At(i), "v", v)
	}
	core.Permute(m, t, "v", t, "v", perm)
	out = make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(float64)
	}
	return out, fromMachine(m), nil
}

// MatrixEntry is one non-zero element of a sparse matrix.
type MatrixEntry struct {
	Row, Col int
	Val      float64
}

// Matrix is an N x N sparse matrix in coordinate format. Duplicate
// coordinates contribute additively.
type Matrix struct {
	N       int
	Entries []MatrixEntry
}

// NNZ returns the number of stored entries.
func (a Matrix) NNZ() int { return len(a.Entries) }

func (a Matrix) internal() spmv.Matrix {
	out := spmv.Matrix{N: a.N, Entries: make([]spmv.Entry, len(a.Entries))}
	for i, e := range a.Entries {
		out.Entries[i] = spmv.Entry{Row: e.Row, Col: e.Col, Val: e.Val}
	}
	return out
}

// MultiplyDense is the host-side reference y = A*x.
func (a Matrix) MultiplyDense(x []float64) []float64 {
	return a.internal().MultiplyDense(x)
}

// SpMV computes y = A*x with the direct sort+scan algorithm of Theorem
// VIII.2 (Theta(m^{3/2}) energy, O(log^3 n) depth, Theta(sqrt m) distance).
func SpMV(a Matrix, x []float64, opts ...Option) (y []float64, met Metrics, err error) {
	defer captureMemLimit(&err)
	cfg := buildConfig(opts)
	track := grid.TrackZOrder
	if cfg.mapped {
		track = cfg.mapping.Track
	}
	m := cfg.newMachine()
	m.Phase("spmv")
	y, err = spmv.MultiplyMapped(m, a.internal(), x, track)
	if err != nil {
		return nil, Metrics{}, err
	}
	return y, fromMachine(m), nil
}

// SpMVPRAM computes y = A*x by simulating the CRCW PRAM algorithm of
// Section VIII under the Lemma VII.2 simulation — the paper's baseline,
// a Theta(log n) factor worse in depth and distance.
func SpMVPRAM(a Matrix, x []float64, opts ...Option) (y []float64, met Metrics, err error) {
	defer captureMemLimit(&err)
	m := buildConfig(opts).newMachine()
	m.Phase("spmv-pram")
	y, err = spmv.MultiplyPRAM(m, a.internal(), x)
	if err != nil {
		return nil, Metrics{}, err
	}
	return y, fromMachine(m), nil
}
