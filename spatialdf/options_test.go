package spatialdf

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestShardsByteIdenticalFacade: every shard count must produce the same
// results and Metrics through the public API, for both a value-carrying op
// (Sort) and the network sorts eligible for the counting fast path.
func TestShardsByteIdenticalFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	type runFn func(opts ...Option) ([]float64, Metrics)
	for name, run := range map[string]runFn{
		"Sort":        func(opts ...Option) ([]float64, Metrics) { return Sort(vals, opts...) },
		"SortBitonic": func(opts ...Option) ([]float64, Metrics) { return SortBitonic(vals, opts...) },
		"SortMesh":    func(opts ...Option) ([]float64, Metrics) { return SortMesh(vals, opts...) },
		"Scan":        func(opts ...Option) ([]float64, Metrics) { return Scan(vals, opts...) },
	} {
		base, baseMet := run()
		for _, k := range []int{2, 4, runtime.NumCPU()} {
			out, met := run(WithShards(k))
			if !met.Equal(baseMet) {
				t.Errorf("%s WithShards(%d): metrics %v, want %v", name, k, met, baseMet)
			}
			for i := range out {
				if out[i] != base[i] {
					t.Fatalf("%s WithShards(%d): out[%d] = %v, want %v", name, k, i, out[i], base[i])
				}
			}
		}
		// Batched counting mode: identical except PeakMemory may shrink.
		out, met := run(WithBatchSends(), WithShards(2))
		if met.Energy != baseMet.Energy || met.Depth != baseMet.Depth ||
			met.Distance != baseMet.Distance || met.Messages != baseMet.Messages {
			t.Errorf("%s WithBatchSends: metrics %v, want %v", name, met, baseMet)
		}
		if met.PeakMemory > baseMet.PeakMemory {
			t.Errorf("%s WithBatchSends: peak memory grew: %d > %d", name, met.PeakMemory, baseMet.PeakMemory)
		}
		for i := range out {
			if out[i] != base[i] {
				t.Fatalf("%s WithBatchSends: out[%d] = %v, want %v", name, i, out[i], base[i])
			}
		}
	}
}

// TestShardsComposeWithTracing: a trace sink forces the sequential charge
// pass, so the event stream must be identical for every shard count.
func TestShardsComposeWithTracing(t *testing.T) {
	vals := []float64{9, 3, 7, 1, 8, 2, 6, 4, 5, 0, 11, 13, 12, 10, 15, 14}
	record := func(opts ...Option) []Event {
		var events []Event
		opts = append(opts, WithTraceSink(trace.SinkFunc(func(e *Event) { events = append(events, *e) })))
		SortMesh(vals, opts...)
		return events
	}
	want := record()
	for _, k := range []int{2, 4} {
		got := record(WithShards(k))
		if len(got) != len(want) {
			t.Fatalf("WithShards(%d): %d events, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("WithShards(%d): event %d = %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}
}

// TestShardsComposeWithCongestion: link loads are charged sequentially, so
// MaxLinkLoad must not depend on the shard count.
func TestShardsComposeWithCongestion(t *testing.T) {
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(255 - i)
	}
	_, base := Sort(vals, WithCongestion())
	if base.MaxLinkLoad == 0 {
		t.Fatal("congestion tracking reported no load")
	}
	_, got := Sort(vals, WithCongestion(), WithShards(4))
	if !got.Equal(base) {
		t.Errorf("WithCongestion+WithShards(4): %v, want %v", got, base)
	}
}

// TestInvalidOptionCombinations: contradictory combinations error on ops
// with an error return and panic on ops without one.
func TestInvalidOptionCombinations(t *testing.T) {
	vals := []float64{3, 1, 2}
	cases := []struct {
		name string
		opts []Option
		frag string
	}{
		{"shards+memlimit", []Option{WithShards(2), WithMemoryLimit(4)}, "WithShards(2) is incompatible with WithMemoryLimit"},
		{"batch+memlimit", []Option{WithBatchSends(), WithMemoryLimit(4)}, "WithBatchSends is incompatible with WithMemoryLimit"},
		{"batch+sink", []Option{WithBatchSends(), WithTraceSink(trace.SinkFunc(func(*Event) {}))}, "WithBatchSends is incompatible with WithTraceSink"},
		{"shards<1", []Option{WithShards(0)}, "shard count must be at least 1"},
	}
	for _, tc := range cases {
		// Error-returning op: the combination surfaces as the error.
		_, _, err := Select(vals, 1, tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: Select err = %v, want containing %q", tc.name, err, tc.frag)
		}
		// Op without an error return: documented panic.
		func() {
			defer func() {
				r := recover()
				if r == nil || !strings.Contains(optionErrString(r), tc.frag) {
					t.Errorf("%s: Sort panic = %v, want containing %q", tc.name, r, tc.frag)
				}
			}()
			Sort(vals, tc.opts...)
		}()
	}
	// The deprecated adapter participates in validation like WithTraceSink.
	//lint:ignore SA1019 the deprecated adapter must keep validating until removed
	_, _, err := Select(vals, 1, WithBatchSends(), WithTracer(func(from, to Coord, v any) {}))
	if err == nil || !strings.Contains(err.Error(), "WithBatchSends is incompatible") {
		t.Errorf("WithBatchSends+WithTracer: err = %v", err)
	}
}

func optionErrString(r any) string {
	if e, ok := r.(error); ok {
		return e.Error()
	}
	return ""
}

// TestBatchSendsDropsCriticalPath documents the WithBatchSends trade-off:
// no sink means no reconstructed critical path.
func TestBatchSendsDropsCriticalPath(t *testing.T) {
	vals := []float64{4, 3, 2, 1}
	_, met := SortBitonic(vals)
	if len(met.CriticalPath()) == 0 {
		t.Fatal("default run should reconstruct a critical path")
	}
	_, met = SortBitonic(vals, WithBatchSends())
	if met.CriticalPath() != nil {
		t.Error("WithBatchSends run unexpectedly carries a critical path")
	}
}
