package spatialdf

import (
	"sort"
	"testing"
)

// bytesToFloats derives a small float slice from fuzz bytes.
func bytesToFloats(data []byte) []float64 {
	if len(data) > 64 {
		data = data[:64]
	}
	out := make([]float64, len(data))
	for i, b := range data {
		out[i] = float64(int8(b))
	}
	return out
}

func FuzzSortMatchesStdlib(f *testing.F) {
	f.Add([]byte{3, 1, 2})
	f.Add([]byte{255, 0, 128, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := bytesToFloats(data)
		if len(vals) == 0 {
			return
		}
		got, _ := Sort(vals)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sorted[%d] = %v, want %v (input %v)", i, got[i], want[i], vals)
			}
		}
	})
}

func FuzzScanMatchesPrefix(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := bytesToFloats(data)
		if len(vals) == 0 {
			return
		}
		got, _ := Scan(vals)
		acc := 0.0
		for i, v := range vals {
			acc += v
			if got[i] != acc {
				t.Fatalf("prefix[%d] = %v, want %v (input %v)", i, got[i], acc, vals)
			}
		}
	})
}

func FuzzSelectMatchesSorted(f *testing.F) {
	f.Add([]byte{9, 1, 5}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		vals := bytesToFloats(data)
		if len(vals) == 0 {
			return
		}
		k := int(kRaw)%len(vals) + 1
		got, _, err := Select(vals, k, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		if got != want[k-1] {
			t.Fatalf("Select(%v, %d) = %v, want %v", vals, k, got, want[k-1])
		}
	})
}
