package spatialdf

import (
	"repro/internal/tree"
)

// Tree is a rooted tree given by a parent array: Parent[v] is v's parent
// and Parent[root] == root.
type Tree struct {
	Parent []int
}

// RootfixSum returns, for every node, the sum of values along the
// root-to-node path (inclusive) — the treefix primitive of the spatial
// tree-algorithms line of work ([38] in the paper), here reduced to one
// energy-optimal Z-order scan over the tree's Euler tour: Θ(n) energy and
// O(log n) depth for any tree shape.
func (t Tree) RootfixSum(values []float64, opts ...Option) (out []float64, met Metrics, err error) {
	defer captureMemLimit(&err)
	m := buildConfig(opts).newMachine()
	m.Phase("rootfix")
	out, err = tree.RootfixSum(m, tree.Tree{Parent: t.Parent}, values)
	if err != nil {
		return nil, Metrics{}, err
	}
	return out, fromMachine(m), nil
}

// LeaffixSum returns, for every node, the sum of values over its subtree
// (inclusive), with the same costs as RootfixSum.
func (t Tree) LeaffixSum(values []float64, opts ...Option) (out []float64, met Metrics, err error) {
	defer captureMemLimit(&err)
	m := buildConfig(opts).newMachine()
	m.Phase("leaffix")
	out, err = tree.LeaffixSum(m, tree.Tree{Parent: t.Parent}, values)
	if err != nil {
		return nil, Metrics{}, err
	}
	return out, fromMachine(m), nil
}
