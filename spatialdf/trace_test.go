package spatialdf

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// checkPaths asserts the critical-path contract of a Metrics value: the
// depth path has exactly Depth hops forming a connected chain with
// telescoping depth annotations, and the distance path's hop distances sum
// to Distance.
func checkPaths(t *testing.T, met Metrics) {
	t.Helper()
	cp := met.CriticalPath()
	if int64(len(cp)) != met.Depth {
		t.Fatalf("CriticalPath length %d, Depth %d", len(cp), met.Depth)
	}
	for i, e := range cp {
		if e.DepthBefore != int64(i) || e.DepthAfter != int64(i+1) {
			t.Fatalf("hop %d: depth %d -> %d, want %d -> %d", i, e.DepthBefore, e.DepthAfter, i, i+1)
		}
		if i > 0 && e.From != cp[i-1].To {
			t.Fatalf("hop %d departs %v, previous arrived %v", i, e.From, cp[i-1].To)
		}
	}
	dp := met.DistanceCriticalPath()
	var sum int64
	for i, e := range dp {
		sum += e.Dist
		if e.DistAfter-e.DistBefore != e.Dist {
			t.Fatalf("distance hop %d: %d -> %d with dist %d", i, e.DistBefore, e.DistAfter, e.Dist)
		}
		if i > 0 && e.From != dp[i-1].To {
			t.Fatalf("distance hop %d departs %v, previous arrived %v", i, e.From, dp[i-1].To)
		}
	}
	if sum != met.Distance {
		t.Fatalf("DistanceCriticalPath sums to %d, Distance %d", sum, met.Distance)
	}
}

func randVals(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	return vals
}

// TestCriticalPathPerOp exercises the critical-path contract on every
// facade operation.
func TestCriticalPathPerOp(t *testing.T) {
	vals := randVals(50, 3)
	t.Run("Sort", func(t *testing.T) {
		_, met := Sort(vals)
		checkPaths(t, met)
	})
	t.Run("SortBitonic", func(t *testing.T) {
		_, met := SortBitonic(vals)
		checkPaths(t, met)
	})
	t.Run("SortMesh", func(t *testing.T) {
		_, met := SortMesh(vals)
		checkPaths(t, met)
	})
	t.Run("SortIndices", func(t *testing.T) {
		_, met := SortIndices(vals)
		checkPaths(t, met)
	})
	t.Run("Select", func(t *testing.T) {
		_, met, err := Select(vals, 17)
		if err != nil {
			t.Fatal(err)
		}
		checkPaths(t, met)
	})
	t.Run("Median", func(t *testing.T) {
		_, met, err := Median(vals)
		if err != nil {
			t.Fatal(err)
		}
		checkPaths(t, met)
	})
	t.Run("Permute", func(t *testing.T) {
		perm := rand.New(rand.NewSource(4)).Perm(len(vals))
		_, met, err := Permute(vals, perm)
		if err != nil {
			t.Fatal(err)
		}
		checkPaths(t, met)
	})
	t.Run("SegmentedScan", func(t *testing.T) {
		heads := make([]bool, len(vals))
		for i := range heads {
			heads[i] = i%7 == 0
		}
		_, met, err := SegmentedScan(vals, heads)
		if err != nil {
			t.Fatal(err)
		}
		checkPaths(t, met)
	})
	t.Run("Scan", func(t *testing.T) {
		_, met := Scan(vals)
		checkPaths(t, met)
	})
	t.Run("ScanTree", func(t *testing.T) {
		_, met := ScanTree(vals)
		checkPaths(t, met)
	})
	t.Run("ScanSequential", func(t *testing.T) {
		_, met := ScanSequential(vals)
		checkPaths(t, met)
	})
	t.Run("Reduce", func(t *testing.T) {
		_, met := Reduce(vals)
		checkPaths(t, met)
	})
	t.Run("BroadcastCost", func(t *testing.T) {
		checkPaths(t, BroadcastCost(30))
	})
	t.Run("SpMV", func(t *testing.T) {
		a := Matrix{N: 8, Entries: []MatrixEntry{{0, 1, 1}, {3, 2, -2}, {5, 5, 4}, {7, 0, 0.5}, {2, 6, 3}}}
		_, met, err := SpMV(a, randVals(8, 5))
		if err != nil {
			t.Fatal(err)
		}
		checkPaths(t, met)
	})
	t.Run("RootfixSum", func(t *testing.T) {
		tr := Tree{Parent: []int{0, 0, 0, 1, 1, 2}}
		_, met, err := tr.RootfixSum(randVals(6, 6))
		if err != nil {
			t.Fatal(err)
		}
		checkPaths(t, met)
	})
}

// TestCriticalPathAbsent covers the cases where no path exists: zero-valued
// Metrics and Sequential compositions.
func TestCriticalPathAbsent(t *testing.T) {
	var zero Metrics
	if zero.CriticalPath() != nil || zero.DistanceCriticalPath() != nil {
		t.Errorf("zero Metrics returned a critical path")
	}
	_, a := Scan(randVals(10, 1))
	_, b := Scan(randVals(10, 2))
	if got := a.Sequential(b).CriticalPath(); got != nil {
		t.Errorf("Sequential composition returned a critical path of %d hops", len(got))
	}
}

// TestWithTraceSinkEvents checks the structured event stream: one event per
// message, the operation's phase stamped on every event, and cumulative
// energy matching the metric.
func TestWithTraceSinkEvents(t *testing.T) {
	var events []Event
	_, met := Sort(randVals(20, 9), WithTraceSink(trace.SinkFunc(func(e *Event) {
		events = append(events, *e)
	})))
	if int64(len(events)) != met.Messages {
		t.Fatalf("sink saw %d events, metrics report %d messages", len(events), met.Messages)
	}
	last := events[len(events)-1]
	if last.EnergyCum != met.Energy {
		t.Errorf("final event energy %d, metric %d", last.EnergyCum, met.Energy)
	}
	for _, e := range events {
		if e.Phase != "sort/merge" {
			t.Fatalf("event carries phase %q, want %q", e.Phase, "sort/merge")
		}
	}
}

// TestWithTraceSinkHeatmap runs a built-in sink through the facade and
// cross-checks its totals against the returned metrics.
func TestWithTraceSinkHeatmap(t *testing.T) {
	hm := trace.NewHeatmap()
	_, met, err := SegmentedScan(randVals(30, 11), make([]bool, 30), WithTraceSink(hm))
	if err != nil {
		t.Fatal(err)
	}
	if hm.Events() != met.Messages {
		t.Errorf("heatmap observed %d events, metrics report %d messages", hm.Events(), met.Messages)
	}
	var sends, traffic int64
	_, cells := hm.Grid()
	for _, row := range cells {
		for _, c := range row {
			sends += c.Sends
			traffic += c.SendTraffic
		}
	}
	if sends != met.Messages {
		t.Errorf("heatmap counted %d sends, metrics report %d messages", sends, met.Messages)
	}
	if traffic != met.Energy {
		t.Errorf("heatmap counted %d send traffic, metrics report energy %d", traffic, met.Energy)
	}
}
