package spatialdf

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/mapping"
)

// TestWithMappingCorrectAcrossSpace: every mapping in the full space
// computes the same scan, reduce, sort and SpMV results as the host-side
// reference — mappings change costs, never answers.
func TestWithMappingCorrectAcrossSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 50 // pads to an 8x8 grid
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	wantScan := make([]float64, n)
	sum := 0.0
	for i, v := range vals {
		sum += v
		wantScan[i] = sum
	}
	wantSorted := append([]float64(nil), vals...)
	sort.Float64s(wantSorted)

	a := Matrix{N: 9}
	for i := 0; i < 20; i++ {
		a.Entries = append(a.Entries, MatrixEntry{Row: rng.Intn(9), Col: rng.Intn(9), Val: rng.NormFloat64()})
	}
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	wantY := a.MultiplyDense(x)

	for _, mp := range mapping.Space() {
		mp := mp
		t.Run(mp.String(), func(t *testing.T) {
			gotScan, _ := Scan(vals, WithMapping(mp))
			for i := range wantScan {
				if !close(gotScan[i], wantScan[i]) {
					t.Fatalf("scan[%d] = %v, want %v", i, gotScan[i], wantScan[i])
				}
			}
			gotSum, _ := Reduce(vals, WithMapping(mp))
			if !close(gotSum, sum) {
				t.Fatalf("reduce = %v, want %v", gotSum, sum)
			}
			gotSorted, _ := Sort(vals, WithMapping(mp))
			for i := range wantSorted {
				if gotSorted[i] != wantSorted[i] {
					t.Fatalf("sort[%d] = %v, want %v", i, gotSorted[i], wantSorted[i])
				}
			}
			y, _, err := SpMV(a, x, WithMapping(mp))
			if err != nil {
				t.Fatalf("SpMV: %v", err)
			}
			for i := range wantY {
				if !close(y[i], wantY[i]) {
					t.Fatalf("spmv y[%d] = %v, want %v", i, y[i], wantY[i])
				}
			}
		})
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+abs(a)+abs(b))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestWithMappingChangesCosts: the knob is real — the paper's mapping
// and the naive baseline must produce different metrics.
func TestWithMappingChangesCosts(t *testing.T) {
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(i)
	}
	paper := Mapping{Track: TrackZOrder, Arity: 4, Tile: mapping.TileSquare, Sort: mapping.SortMerge}
	_, base := Reduce(vals, WithMapping(DefaultMapping()))
	_, tuned := Reduce(vals, WithMapping(paper))
	if base.Equal(tuned) {
		t.Fatalf("baseline and paper mapping cost the same: %v", base)
	}
	if tuned.Energy >= base.Energy {
		t.Errorf("quadrant reduce energy %d not below row-major tree %d", tuned.Energy, base.Energy)
	}
}

// TestWithMappingDefaultUntouched: without the option, operations keep
// their documented paper mappings byte-for-byte.
func TestWithMappingDefaultUntouched(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	_, plain := Scan(vals)
	_, viaOption := Scan(vals, WithMapping(Mapping{Track: TrackZOrder, Arity: 4, Tile: mapping.TileSquare, Sort: mapping.SortMerge}))
	if !plain.Equal(viaOption) {
		t.Errorf("paper mapping via option differs from default path: %v vs %v", plain, viaOption)
	}
}

// TestWithMappingInvalid: an invalid mapping surfaces as an option
// error through the error-returning path.
func TestWithMappingInvalid(t *testing.T) {
	_, _, err := SpMV(Matrix{N: 1, Entries: []MatrixEntry{{0, 0, 1}}}, []float64{1},
		WithMapping(Mapping{Track: "diagonal", Arity: 2, Tile: mapping.TileSquare, Sort: mapping.SortMerge}))
	if err == nil {
		t.Fatal("unknown track accepted")
	}
}
