package spatialdf

import (
	"math"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/mapped"
	"repro/internal/mapping"
	"repro/internal/order"
	"repro/internal/zorder"
)

// Mapping is a serializable layout/schedule configuration: which grid
// track arrays live on (TrackRowMajor, TrackZOrder, TrackHilbert), the
// broadcast/reduce tree arity, the processor-tile aspect ratio, and the
// sorting algorithm. Scan, Reduce, Sort and SpMV honor the fields that
// apply to them (see WithMapping); String/ParseMapping round-trip the
// canonical form ("track=zorder,arity=4,tile=square,sort=merge") and
// the JSON encoding is a plain struct, so a tuning verdict from
// spatialtune names a configuration this package can replay exactly.
type Mapping = mapping.Mapping

// Track kinds a Mapping can place arrays on.
const (
	TrackRowMajor = grid.TrackRowMajor
	TrackZOrder   = grid.TrackZOrder
	TrackHilbert  = grid.TrackHilbert
)

// DefaultMapping is the naive baseline configuration: row-major layout,
// binary trees, square tile, bitonic sort.
func DefaultMapping() Mapping { return mapping.Default() }

// ParseMapping reads a Mapping from its canonical string form. Omitted
// fields keep their DefaultMapping value, so partial overrides like
// "track=zorder" are valid.
func ParseMapping(s string) (Mapping, error) { return mapping.Parse(s) }

// WithMapping runs the operation under the given layout/schedule
// configuration instead of the paper's fixed choices. Operations honor
// the fields that apply to them — Scan the track, Reduce the track,
// arity and tile, Sort the algorithm and (for network sorts) the track,
// SpMV the matrix track — and ignore the rest. Without this option every
// operation keeps its documented paper mapping (Z-order scans, quadrant
// collectives, 2-D mergesort for Sort); note that differs from
// DefaultMapping, which is the naive baseline the tuner measures
// against. An invalid mapping is an option error, reported per the
// Option contract.
func WithMapping(m Mapping) Option {
	return func(c *config) {
		if err := m.Validate(); err != nil {
			c.err = err
			return
		}
		c.mapping, c.mapped = m, true
	}
}

// scanMapped runs ScanWith's grid program under an explicit mapping.
func scanMapped(op func(a, b float64) float64, identity float64, vals []float64, cfg config) ([]float64, Metrics) {
	m, r := gridFor(len(vals), cfg, "scan")
	t := mapped.ScanTrack(cfg.mapping, r)
	for i := 0; i < r.Size(); i++ {
		if i < len(vals) {
			m.Set(t.At(i), "v", vals[i])
		} else {
			m.Set(t.At(i), "v", identity)
		}
	}
	mapped.Scan(m, r, "v", func(a, b machine.Value) machine.Value {
		return op(a.(float64), b.(float64))
	}, identity, cfg.mapping)
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(float64)
	}
	return out, fromMachine(m)
}

// reduceMapped runs Reduce's grid program under an explicit mapping.
func reduceMapped(vals []float64, cfg config) (float64, Metrics) {
	m := cfg.newMachine()
	m.Phase("reduce")
	r := mapped.ReduceRegion(paddedSize(len(vals)), cfg.mapping)
	t := grid.RowMajor(r)
	for i := 0; i < r.Size(); i++ {
		v := 0.0
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
	mapped.Reduce(m, r, "v", collectives.Add, cfg.mapping)
	return m.Get(r.Origin, "v").(float64), fromMachine(m)
}

// sortMapped runs Sort's grid program under an explicit mapping.
func sortMapped(vals []float64, cfg config) ([]float64, Metrics) {
	m, r := gridFor(len(vals), cfg, "sort/"+string(cfg.mapping.Sort))
	t := mapped.SortTrack(cfg.mapping, r)
	for i := 0; i < r.Size(); i++ {
		v := math.Inf(1)
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
	mapped.Sort(m, r, "v", order.Float64, cfg.mapping)
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(t.At(i), "v").(float64)
	}
	return out, fromMachine(m)
}

// paddedSize returns the square power-of-two grid size holding n
// elements — the same padding rule as gridFor.
func paddedSize(n int) int {
	side := zorder.NextPow2(int(math.Ceil(math.Sqrt(float64(max(n, 1))))))
	return side * side
}
