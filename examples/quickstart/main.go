// Quickstart: the four primitives of the library — scan, sort, rank
// selection and sparse matrix-vector multiplication — on small inputs, with
// the Spatial Computer Model costs (energy, depth, distance) each operation
// reports.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro/spatialdf"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Parallel scan (prefix sums): Theta(n) energy, O(log n) depth.
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	prefix, m := spatialdf.Scan(vals)
	fmt.Printf("scan      n=%-6d last prefix=%8.2f   %v\n", len(vals), prefix[len(prefix)-1], m)

	// Sorting: the energy-optimal 2-D mergesort, Theta(n^{3/2}) energy.
	sorted, m := spatialdf.Sort(vals)
	fmt.Printf("sort      n=%-6d min=%.4f max=%.4f   %v\n", len(vals), sorted[0], sorted[len(sorted)-1], m)

	// Rank selection: the median in Theta(n) energy — a polynomial factor
	// cheaper than sorting.
	med, m, err := spatialdf.Median(vals)
	if err != nil {
		panic(err)
	}
	fmt.Printf("median    n=%-6d median=%.4f           %v\n", len(vals), med, m)

	// Sparse matrix-vector multiplication: sort + segmented scan.
	a := spatialdf.Matrix{N: 256}
	for i := 0; i < 1024; i++ {
		a.Entries = append(a.Entries, spatialdf.MatrixEntry{
			Row: rng.Intn(a.N), Col: rng.Intn(a.N), Val: rng.Float64(),
		})
	}
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.Float64()
	}
	y, m, err := spatialdf.SpMV(a, x)
	if err != nil {
		panic(err)
	}
	fmt.Printf("spmv      nnz=%-5d y[0]=%8.4f           %v\n", a.NNZ(), y[0], m)

	// Baselines for comparison: the bitonic network pays a log-factor more
	// energy than the mergesort; the sequential scan pays linear depth.
	_, mb := spatialdf.SortBitonic(vals)
	_, ms := spatialdf.ScanSequential(vals)
	fmt.Printf("\nbaselines: bitonic sort energy %d vs mergesort %d; sequential scan depth %d vs z-order scan depth %d\n",
		mb.Energy, mustSortMetrics(vals).Energy, ms.Depth, mustScanMetrics(vals).Depth)
}

func mustSortMetrics(vals []float64) spatialdf.Metrics {
	_, m := spatialdf.Sort(vals)
	return m
}

func mustScanMetrics(vals []float64) spatialdf.Metrics {
	_, m := spatialdf.Scan(vals)
	return m
}
