// Sort pooling for graph neural networks on a spatial dataflow
// architecture.
//
// The paper's introduction motivates spatial sorting with "graph neural
// networks with sort pooling layers [16], which rely on sorting as a
// critical operation for feature extraction". A SortPooling layer (Zhang et
// al., AAAI'18) orders a graph's node embeddings by a continuous "structural
// role" score and keeps the top-k rows, giving downstream layers a
// fixed-size, permutation-invariant input.
//
// This example builds a small synthetic graph, computes one round of
// degree-normalized feature propagation (an SpMV per feature channel — the
// GNN aggregation step), scores nodes by their last channel, and runs the
// pooling sort spatially. It reports the Spatial Computer Model costs and
// contrasts the energy-optimal mergesort with the bitonic-network baseline
// for the pooling step.
//
// Run with:
//
//	go run ./examples/sortpooling
package main

import (
	"fmt"
	"math/rand"

	"repro/spatialdf"
)

const (
	numNodes = 256
	numEdges = 1024
	channels = 4
	topK     = 32
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Random sparse graph; adjacency normalized by out-degree so one SpMV
	// per channel is one mean-aggregation GNN layer.
	deg := make([]int, numNodes)
	type edge struct{ u, v int }
	edges := make([]edge, 0, numEdges)
	for i := 0; i < numEdges; i++ {
		e := edge{rng.Intn(numNodes), rng.Intn(numNodes)}
		edges = append(edges, e)
		deg[e.u]++
	}
	adj := spatialdf.Matrix{N: numNodes}
	for _, e := range edges {
		adj.Entries = append(adj.Entries, spatialdf.MatrixEntry{
			Row: e.v, Col: e.u, Val: 1 / float64(deg[e.u]),
		})
	}

	// Node features.
	features := make([][]float64, channels)
	for c := range features {
		features[c] = make([]float64, numNodes)
		for i := range features[c] {
			features[c][i] = rng.NormFloat64()
		}
	}

	// Whole network in one call: two aggregation layers (one SpMV per
	// channel per layer) plus the sort-pooling layer, all on the spatial
	// machine.
	gnnGraph := spatialdf.GNNGraph{Nodes: numNodes}
	for _, e := range edges {
		gnnGraph.Edges = append(gnnGraph.Edges, spatialdf.GraphEdge{U: e.u, V: e.v, W: 1})
	}
	net := spatialdf.GNN{Layers: 2, TopK: topK}
	pooled, picked, netCost, err := net.Forward(gnnGraph, features)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sort-pooling GNN forward pass (%d layers x %d channels over %d-node graph, nnz=%d):\n  %v\n",
		net.Layers, channels, numNodes, adj.NNZ(), netCost)
	fmt.Printf("  top-%d nodes by structural score: %v ...\n", topK, picked[:8])
	fmt.Printf("  pooled feature block: %d x %d (first row %v)\n", len(pooled), channels, pooled[0])

	// Cost anatomy of the pooling step alone.
	scores := features[channels-1]
	_, poolCost := spatialdf.Sort(scores)
	_, bitonicCost := spatialdf.SortBitonic(scores)
	fmt.Printf("\npooling sort alone: mergesort %v\n                    bitonic   %v\n", poolCost, bitonicCost)
	fmt.Printf("at n=%d the bitonic network is still ahead on constants; the normalized gap closes as n grows (see EXPERIMENTS.md, sort-ablation)\n", numNodes)

	// A cheaper alternative when only the k-th threshold is needed: rank
	// selection instead of a full sort (linear energy, Theorem VI.3).
	threshold, selCost, err := spatialdf.Select(scores, numNodes-topK+1, spatialdf.WithSeed(3))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nthreshold via rank selection instead of sorting: score >= %.3f\n  %v\n", threshold, selCost)
	fmt.Printf("  selection/sort energy: %.2fx\n", float64(selCost.Energy)/float64(poolCost.Energy))
}
