// Tour of the communication collectives of Section IV: the depth/energy
// trade-off between scan designs, and the cost of broadcast and reduce
// across grid sizes. Prints the same series the paper's Section IV
// discusses: the energy-optimal Z-order scan matches the sequential scan's
// linear energy at the binary tree's logarithmic depth.
//
// Run with:
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"math/rand"

	"repro/spatialdf"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	fmt.Println("scan design space (energy vs depth), Section IV-C:")
	fmt.Printf("%8s  %12s %8s   %12s %8s   %12s %8s\n",
		"n", "zorder E", "depth", "tree E", "depth", "seq E", "depth")
	for _, n := range []int{256, 1024, 4096, 16384} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		_, z := spatialdf.Scan(vals)
		_, t := spatialdf.ScanTree(vals)
		_, s := spatialdf.ScanSequential(vals)
		fmt.Printf("%8d  %12d %8d   %12d %8d   %12d %8d\n",
			n, z.Energy, z.Depth, t.Energy, t.Depth, s.Energy, s.Depth)
	}
	fmt.Println("\nthe Z-order scan keeps the tree's O(log n) depth at the sequential scan's Theta(n) energy.")

	fmt.Println("\nbroadcast without multicasting (Lemma IV.1):")
	fmt.Printf("%8s  %12s %8s %10s\n", "n", "energy", "depth", "distance")
	for _, n := range []int{256, 1024, 4096, 16384, 65536} {
		m := spatialdf.BroadcastCost(n)
		fmt.Printf("%8d  %12d %8d %10d\n", n, m.Energy, m.Depth, m.Distance)
	}

	fmt.Println("\nsegmented scan (the SpMV building block):")
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	heads := []bool{true, false, false, true, false, true, false, false}
	out, m, err := spatialdf.SegmentedScan(vals, heads)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  values:   %v\n  heads:    %v\n  prefixes: %v\n  cost:     %v\n", vals, heads, out, m)
}
