// Robust statistics on a spatial dataflow architecture.
//
// Section VI of the paper motivates rank selection with nonparametric
// statistics: medians and quantiles are the building blocks of robust
// estimators. This example computes a five-number summary (min, quartiles,
// median, max) of a heavy-tailed sample two ways — by fully sorting
// (Theta(n^{3/2}) energy) and by four independent rank selections
// (Theta(n) energy each) — and contrasts the model costs, then uses the
// selected quartiles to clip outliers (a winsorized mean).
//
// Run with:
//
//	go run ./examples/quantiles
package main

import (
	"fmt"
	"math/rand"

	"repro/spatialdf"
)

func main() {
	const n = 4096
	rng := rand.New(rand.NewSource(99))
	data := make([]float64, n)
	for i := range data {
		// Heavy-tailed: mostly standard normal, occasional large spikes.
		data[i] = rng.NormFloat64()
		if rng.Intn(50) == 0 {
			data[i] *= 100
		}
	}

	// Five-number summary via rank selection (linear energy per rank).
	ranks := map[string]int{"min": 1, "q1": n / 4, "median": n / 2, "q3": 3 * n / 4, "max": n}
	var selCost spatialdf.Metrics
	summary := map[string]float64{}
	for name, k := range ranks {
		v, m, err := spatialdf.Select(data, k, spatialdf.WithSeed(int64(k)))
		if err != nil {
			panic(err)
		}
		summary[name] = v
		selCost = selCost.Sequential(m)
	}
	fmt.Printf("five-number summary via rank selection:\n")
	for _, name := range []string{"min", "q1", "median", "q3", "max"} {
		fmt.Printf("  %-6s %10.3f\n", name, summary[name])
	}
	fmt.Printf("  total cost: %v\n", selCost)

	// The same summary by sorting once.
	sorted, sortCost := spatialdf.Sort(data)
	fmt.Printf("\nvia a full sort: min=%.3f q1=%.3f median=%.3f q3=%.3f max=%.3f\n",
		sorted[0], sorted[n/4-1], sorted[n/2-1], sorted[3*n/4-1], sorted[n-1])
	fmt.Printf("  sort cost: %v\n", sortCost)
	fmt.Printf("\nfive selections vs one sort: %.2fx the energy (selection is Theta(n) per rank, Theorem VI.3)\n",
		float64(selCost.Energy)/float64(sortCost.Energy))

	// Winsorized mean: clip to [q1 - 1.5 IQR, q3 + 1.5 IQR] and average
	// with a spatial reduction.
	iqr := summary["q3"] - summary["q1"]
	lo, hi := summary["q1"]-1.5*iqr, summary["q3"]+1.5*iqr
	clipped := make([]float64, n)
	outliers := 0
	for i, v := range data {
		switch {
		case v < lo:
			clipped[i] = lo
			outliers++
		case v > hi:
			clipped[i] = hi
			outliers++
		default:
			clipped[i] = v
		}
	}
	total, redCost := spatialdf.Reduce(clipped)
	fmt.Printf("\nwinsorized mean %.4f (clipped %d outliers); reduce cost: %v\n",
		total/float64(n), outliers, redCost)
}
