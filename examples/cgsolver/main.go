// Conjugate-gradient solver on a spatial dataflow architecture.
//
// The paper motivates its primitives with sparse scientific workloads: SpMV
// "is central to scientific workloads [13], [14]" — reference [14] being
// Hestenes & Stiefel's conjugate gradients. This example solves the 2-D
// Poisson problem A u = b, where A is the 5-point stencil Laplacian, using
// CG in which every matrix-vector product runs as the paper's spatial SpMV
// (sort + segmented scan) and every inner product as a spatial reduction.
// The Spatial Computer Model costs of the whole solve are accumulated
// across iterations with Metrics.Sequential.
//
// Run with:
//
//	go run ./examples/cgsolver
package main

import (
	"fmt"
	"math"

	"repro/spatialdf"
)

// laplacian2D builds the 5-point stencil matrix of a side x side grid.
func laplacian2D(side int) spatialdf.Matrix {
	n := side * side
	a := spatialdf.Matrix{N: n}
	idx := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := idx(r, c)
			a.Entries = append(a.Entries, spatialdf.MatrixEntry{Row: i, Col: i, Val: 4})
			for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], c+d[1]
				if nr >= 0 && nr < side && nc >= 0 && nc < side {
					a.Entries = append(a.Entries, spatialdf.MatrixEntry{Row: i, Col: idx(nr, nc), Val: -1})
				}
			}
		}
	}
	return a
}

func axpy(alpha float64, x, y []float64) []float64 { // y + alpha*x
	out := make([]float64, len(x))
	for i := range x {
		out[i] = y[i] + alpha*x[i]
	}
	return out
}

func main() {
	const side = 12 // 144 unknowns, 664 non-zeros
	a := laplacian2D(side)
	n := a.N

	// Right-hand side: a point source in the middle of the domain.
	b := make([]float64, n)
	b[n/2] = 1

	var total spatialdf.Metrics
	dot := func(x, y []float64) float64 {
		prod := make([]float64, n)
		for i := range x {
			prod[i] = x[i] * y[i]
		}
		s, m := spatialdf.Reduce(prod)
		total = total.Sequential(m)
		return s
	}
	matvec := func(x []float64) []float64 {
		y, m, err := spatialdf.SpMV(a, x)
		if err != nil {
			panic(err)
		}
		total = total.Sequential(m)
		return y
	}

	// Conjugate gradients (Hestenes-Stiefel).
	u := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rho := dot(r, r)
	fmt.Printf("solving %dx%d Poisson system (n=%d, nnz=%d)\n", n, n, n, a.NNZ())
	iters := 0
	for ; iters < 4*n && math.Sqrt(rho) > 1e-10; iters++ {
		ap := matvec(p)
		alpha := rho / dot(p, ap)
		u = axpy(alpha, p, u)
		r = axpy(-alpha, ap, r)
		rhoNew := dot(r, r)
		p = axpy(rhoNew/rho, p, r)
		rho = rhoNew
		if iters%10 == 0 {
			fmt.Printf("  iter %3d  residual %.3e\n", iters, math.Sqrt(rho))
		}
	}
	fmt.Printf("converged after %d iterations, residual %.3e\n", iters, math.Sqrt(rho))

	// Verify against the definition of the system.
	au, _, err := spatialdf.SpMV(a, u)
	if err != nil {
		panic(err)
	}
	worst := 0.0
	for i := range au {
		if d := math.Abs(au[i] - b[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max |Au - b| = %.3e\n", worst)
	fmt.Printf("\nspatial-model cost of the whole solve:\n  %v\n", total)
	fmt.Printf("  (energy per iteration ~ %d, chain depth per iteration ~ %d)\n",
		total.Energy/int64(iters+1), total.Depth/int64(iters+1))
}
