// Package repro's root benchmarks regenerate, one testing.B target per
// experiment ID of DESIGN.md, the paper's evaluation artifacts. Each bench
// reuses one simulated machine across iterations (machine.Reset zeroes the
// grid in place, keeping the tile and register-name allocations warm) and
// reports the Spatial Computer Model costs (energy, depth, distance) as
// custom metrics next to the usual wall-clock numbers; `go test -bench=.
// -benchmem` prints them all. The spatialbench command runs the same
// measurements as full parameter sweeps with fitted scaling exponents.
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/gnn"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/pram"
	"repro/internal/sortnet"
	"repro/internal/spmv"
	"repro/internal/tree"
	"repro/internal/workload"
)

// report attaches the model costs of the last run to the benchmark output.
func report(b *testing.B, m *machine.Machine) {
	b.Helper()
	mm := m.Metrics()
	b.ReportMetric(float64(mm.Energy), "energy/op")
	b.ReportMetric(float64(mm.Depth), "depth/op")
	b.ReportMetric(float64(mm.Distance), "distance/op")
	b.ReportMetric(float64(mm.Messages), "messages/op")
}

func placeBench(m *machine.Machine, t grid.Track, vals []float64) {
	for i := 0; i < t.Len(); i++ {
		v := 0.0
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
}

// BenchmarkTable1Scan — Table I row 1 (Lemma IV.3): Theta(n) energy,
// O(log n) depth, Theta(sqrt n) distance.
func BenchmarkTable1Scan(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			vals := workload.Array(workload.Random, n, rng)
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				r := grid.SquareFor(machine.Coord{}, n)
				placeBench(m, grid.ZOrder(r), vals)
				collectives.Scan(m, r, "v", collectives.Add, 0.0)
			}
			report(b, m)
		})
	}
}

// BenchmarkTable1Sort — Table I row 2 (Theorem V.8): Theta(n^{3/2}) energy,
// O(log^3 n) depth, Theta(sqrt n) distance.
func BenchmarkTable1Sort(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			vals := workload.Array(workload.Random, n, rng)
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				r := grid.SquareFor(machine.Coord{}, n)
				placeBench(m, grid.RowMajor(r), vals)
				core.MergeSort(m, r, "v", order.Float64)
			}
			report(b, m)
		})
	}
}

// BenchmarkTable1Select — Table I row 3 (Theorem VI.3): Theta(n) energy,
// O(log^2 n) depth w.h.p.
func BenchmarkTable1Select(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			vals := workload.Array(workload.Random, n, rng)
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				r := grid.SquareFor(machine.Coord{}, n)
				placeBench(m, grid.RowMajor(r), vals)
				core.Select(m, r, "v", n/2, order.Float64, rand.New(rand.NewSource(int64(i))))
			}
			report(b, m)
		})
	}
}

// BenchmarkTable1SpMV — Table I row 4 (Theorem VIII.2): Theta(m^{3/2})
// energy, O(log^3 n) depth, Theta(sqrt m) distance.
func BenchmarkTable1SpMV(b *testing.B) {
	for _, nnz := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("nnz=%d", nnz), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			a := workload.SparseMatrix(workload.MatUniform, nnz, nnz, rng)
			x := workload.Array(workload.Random, nnz, rng)
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				if _, err := spmv.Multiply(m, a, x); err != nil {
					b.Fatal(err)
				}
			}
			report(b, m)
		})
	}
}

// BenchmarkMeshSortPoint measures one full-mode sort-sweep measurement — a
// 65536-element Shearsort point — through the machine's two send APIs:
// "value" carries register payloads through per-level batched rounds,
// "counting" takes the counting-only fast path a sink-free batched machine
// allows (payloads host-side, identical Energy/Depth/Distance/Messages).
// The ratio of the two recorded ns/op is the single-measurement speedup of
// the batched-send redesign; `make bench` records both in
// BENCH_machine.json so bench-compare tracks them.
func BenchmarkMeshSortPoint(b *testing.B) {
	const n = 65536
	rng := rand.New(rand.NewSource(5))
	vals := workload.Array(workload.Random, n, rng)
	for _, mode := range []struct {
		name  string
		batch bool
	}{{"value", false}, {"counting", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m := machine.New()
			m.SetBatchSends(mode.batch)
			for i := 0; i < b.N; i++ {
				m.Reset()
				r := grid.SquareFor(machine.Coord{}, n)
				placeBench(m, grid.RowMajor(r), vals)
				sortnet.Shearsort(m, r, "v", order.Float64)
			}
			report(b, m)
		})
	}
}

// BenchmarkBroadcast — Lemma IV.1 on square and elongated subgrids.
func BenchmarkBroadcast(b *testing.B) {
	for _, sh := range [][2]int{{64, 64}, {4096, 1}, {256, 16}} {
		b.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(b *testing.B) {
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				r := grid.Rect{Origin: machine.Coord{}, H: sh[0], W: sh[1]}
				m.Set(r.Origin, "v", 1.0)
				collectives.Broadcast(m, r, "v")
			}
			report(b, m)
		})
	}
}

// BenchmarkReduce — Corollary IV.2: the multicast-free reduce vs the
// binary-tree reduce baseline (Theta(log n) energy gap).
func BenchmarkReduce(b *testing.B) {
	const side = 64
	r := grid.Square(machine.Coord{}, side)
	b.Run("2d", func(b *testing.B) {
		m := machine.New()
		for i := 0; i < b.N; i++ {
			m.Reset()
			placeBench(m, grid.RowMajor(r), nil)
			collectives.Reduce(m, r, "v", collectives.Add)
		}
		report(b, m)
	})
	b.Run("tree-baseline", func(b *testing.B) {
		m := machine.New()
		for i := 0; i < b.N; i++ {
			m.Reset()
			placeBench(m, grid.RowMajor(r), nil)
			collectives.ReduceTrack(m, grid.RowMajor(r), "v", collectives.Add)
		}
		report(b, m)
	})
}

// BenchmarkScanBaselines — Figure/Section IV-C scan design space.
func BenchmarkScanBaselines(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(5))
	vals := workload.Array(workload.Random, n, rng)
	run := func(b *testing.B, f func(m *machine.Machine, r grid.Rect)) {
		m := machine.New()
		for i := 0; i < b.N; i++ {
			m.Reset()
			r := grid.SquareFor(machine.Coord{}, n)
			f(m, r)
		}
		report(b, m)
	}
	b.Run("zorder", func(b *testing.B) {
		run(b, func(m *machine.Machine, r grid.Rect) {
			placeBench(m, grid.ZOrder(r), vals)
			collectives.Scan(m, r, "v", collectives.Add, 0.0)
		})
	})
	b.Run("tree-baseline", func(b *testing.B) {
		run(b, func(m *machine.Machine, r grid.Rect) {
			placeBench(m, grid.RowMajor(r), vals)
			collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
		})
	})
	b.Run("sequential-baseline", func(b *testing.B) {
		run(b, func(m *machine.Machine, r grid.Rect) {
			placeBench(m, grid.ZOrder(r), vals)
			collectives.ScanSequential(m, grid.ZOrder(r), "v", collectives.Add)
		})
	})
}

// BenchmarkBitonicSort — Lemma V.4: Theta(n^{3/2} log n) energy,
// Theta(log^2 n) depth on a square subgrid.
func BenchmarkBitonicSort(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			vals := workload.Array(workload.Random, n, rng)
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				r := grid.SquareFor(machine.Coord{}, n)
				placeBench(m, grid.RowMajor(r), vals)
				sortnet.Sort(m, grid.RowMajor(r), "v", n, order.Float64)
			}
			report(b, m)
		})
	}
}

// BenchmarkBitonicMerge — Lemma V.3: Theta(h^2 w + w^2 h) energy,
// Theta(log n) depth.
func BenchmarkBitonicMerge(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(7))
	vals := workload.Array(workload.Random, n, rng)
	// Bitonic input: ascending then descending halves.
	half := append([]float64(nil), vals...)
	for i := 0; i < n/2; i++ {
		half[i] = float64(i)
		half[n-1-i] = float64(i) + 0.5
	}
	m := machine.New()
	for i := 0; i < b.N; i++ {
		m.Reset()
		r := grid.SquareFor(machine.Coord{}, n)
		placeBench(m, grid.RowMajor(r), half)
		sortnet.Run(m, sortnet.BitonicMerge(n), grid.RowMajor(r), "v", order.Float64)
	}
	report(b, m)
}

// BenchmarkMeshSort — Section II-B: shearsort's polynomial Theta(sqrt n
// log n) depth, the mesh baseline the paper improves on.
func BenchmarkMeshSort(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(8))
	vals := workload.Array(workload.Random, n, rng)
	m := machine.New()
	for i := 0; i < b.N; i++ {
		m.Reset()
		r := grid.SquareFor(machine.Coord{}, n)
		placeBench(m, grid.RowMajor(r), vals)
		sortnet.Shearsort(m, r, "v", order.Float64)
	}
	report(b, m)
}

// BenchmarkAllPairs — Lemma V.5: O(n^{5/2}) energy, O(log n) depth.
func BenchmarkAllPairs(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			vals := workload.Array(workload.Random, n, rng)
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				r := grid.SquareFor(machine.Coord{}, n)
				tr := grid.RowMajor(r)
				placeBench(m, tr, vals)
				side := core.AllPairsScratchSide(n)
				core.AllPairsSort(m, tr, "v", n, r.RightOf(side, side), order.Float64)
			}
			report(b, m)
		})
	}
}

// BenchmarkSelectSorted — Lemma V.6: O(n^{5/4}) energy, O(log n) depth.
func BenchmarkSelectSorted(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(10))
			half := n / 2
			av := workload.Array(workload.Sorted, half, rng)
			bv := workload.Array(workload.Sorted, half, rng)
			side := 1
			for side*side < half {
				side *= 2
			}
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				ra := grid.Square(machine.Coord{}, side)
				rb := grid.Square(machine.Coord{Row: 0, Col: ra.W + 1}, side)
				tA := grid.Slice(grid.RowMajor(ra), 0, half)
				tB := grid.Slice(grid.RowMajor(rb), 0, half)
				placeBench(m, tA, av)
				placeBench(m, tB, bv)
				scratch := grid.Square(machine.Coord{Row: ra.H + 1, Col: 0}, core.SelectScratchSide(n))
				core.SelectInSorted(m, tA, tB, "v", n/2, scratch, order.Float64)
			}
			report(b, m)
		})
	}
}

// BenchmarkMerge2D — Lemma V.7 / Figure 3: O(n^{3/2}) energy, O(log^2 n)
// depth.
func BenchmarkMerge2D(b *testing.B) {
	for _, n := range []int{2048, 8192} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			quarter := n / 2
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				side := 2
				for side*side/4 < quarter {
					side *= 2
				}
				r := grid.Square(machine.Coord{}, side)
				q := r.Quadrants()
				tA, tB := grid.RowMajor(q[0]), grid.RowMajor(q[1])
				for j := 0; j < quarter; j++ {
					m.Set(tA.At(j), "v", float64(2*j))
					m.Set(tB.At(j), "v", float64(2*j+1))
				}
				core.Merge(m, tA, tB, "v", r.TopHalf(), order.Float64)
			}
			report(b, m)
		})
	}
}

// BenchmarkPermutation — Lemma V.1: the reversal permutation's
// Omega(n^{3/2}) energy (vs the free identity).
func BenchmarkPermutation(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(11))
	for _, kind := range []workload.PermKind{workload.PermReversal, workload.PermTranspose, workload.PermRandom} {
		b.Run(string(kind), func(b *testing.B) {
			perm := workload.Permutation(kind, n, rng)
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				r := grid.SquareFor(machine.Coord{}, n)
				tr := grid.RowMajor(r)
				placeBench(m, tr, nil)
				core.Permute(m, tr, "v", tr, "v", perm)
			}
			report(b, m)
		})
	}
}

// BenchmarkEREW — Lemma VII.1: O(p(sqrt p + sqrt m)) energy and O(1) depth
// per EREW step (TreeSum as the workload).
func BenchmarkEREW(b *testing.B) {
	const n = 256
	m := machine.New()
	for i := 0; i < b.N; i++ {
		m.Reset()
		init := make([]machine.Value, n)
		for j := range init {
			init[j] = 1.0
		}
		sim := pram.New(m, pram.TreeSum{N: n}, pram.EREW, init)
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
	report(b, m)
}

// BenchmarkCRCW — Lemma VII.2: sorting-based concurrent access, O(log^3 p)
// depth per step (one concurrent-read step as the workload).
func BenchmarkCRCW(b *testing.B) {
	for _, p := range []int{256, 1024} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				sim := pram.New(m, pram.ConcurrentRead{P: p}, pram.CRCW, []machine.Value{1.0})
				if err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			report(b, m)
		})
	}
}

// BenchmarkSpMVvsPRAM — Section VIII: the direct SpMV against the
// PRAM-simulation upper bound (log-factor depth/distance gap).
func BenchmarkSpMVvsPRAM(b *testing.B) {
	const n = 32
	rng := rand.New(rand.NewSource(12))
	a := workload.SparseMatrix(workload.MatUniform, n, 4*n, rng)
	x := workload.Array(workload.Random, n, rng)
	b.Run("direct", func(b *testing.B) {
		m := machine.New()
		for i := 0; i < b.N; i++ {
			m.Reset()
			if _, err := spmv.Multiply(m, a, x); err != nil {
				b.Fatal(err)
			}
		}
		report(b, m)
	})
	b.Run("pram-baseline", func(b *testing.B) {
		m := machine.New()
		for i := 0; i < b.N; i++ {
			m.Reset()
			if _, err := spmv.MultiplyPRAM(m, a, x); err != nil {
				b.Fatal(err)
			}
		}
		report(b, m)
	})
}

// BenchmarkTreefix — the Section II-A comparison: Euler-tour treefix sums
// at Theta(n) energy on any tree shape.
func BenchmarkTreefix(b *testing.B) {
	for _, shape := range []string{"path", "balanced"} {
		b.Run(shape, func(b *testing.B) {
			const n = 4096
			var tr tree.Tree
			if shape == "path" {
				tr = tree.Path(n)
			} else {
				tr = tree.Balanced(n)
			}
			values := make([]float64, n)
			for i := range values {
				values[i] = 1
			}
			m := machine.New()
			for i := 0; i < b.N; i++ {
				m.Reset()
				if _, err := tree.RootfixSum(m, tr, values); err != nil {
					b.Fatal(err)
				}
			}
			report(b, m)
		})
	}
}

// BenchmarkGNNForward — the paper's motivating application: a sort-pooling
// GNN forward pass (aggregation SpMVs + spatial SortPooling).
func BenchmarkGNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	const nodes = 64
	g := gnn.Graph{Nodes: nodes}
	for i := 0; i < 4*nodes; i++ {
		g.Edges = append(g.Edges, gnn.Edge{U: rng.Intn(nodes), V: rng.Intn(nodes), W: 1})
	}
	feats := make(gnn.Features, 2)
	for c := range feats {
		feats[c] = workload.Array(workload.Random, nodes, rng)
	}
	md := gnn.Model{Layers: 2, TopK: 16}
	m := machine.New()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, _, err := md.Forward(m, g, feats); err != nil {
			b.Fatal(err)
		}
	}
	report(b, m)
}

// BenchmarkSweepScan — the harness end to end: a 12-point Z-order scan
// sweep (n=4096) through internal/harness on pooled machines, at one
// worker and at GOMAXPROCS workers. The two must produce identical rows;
// on a multi-core machine the second runs a multiple faster.
func BenchmarkSweepScan(b *testing.B) {
	point := func(i int, env *harness.Env) []harness.Row {
		const n = 4096
		vals := workload.Array(workload.Random, n, env.Rng)
		mm := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeBench(m, grid.ZOrder(r), vals)
			collectives.Scan(m, r, "v", collectives.Add, 0.0)
		})
		return harness.One(i, float64(mm.Energy))
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			h := harness.New(1, harness.WithWorkers(workers))
			for i := 0; i < b.N; i++ {
				h.Sweep("bench-scan", 12, point)
			}
		})
	}
}
